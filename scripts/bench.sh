#!/usr/bin/env bash
# bench.sh — performance benchmark harness.
#
# Emits BENCH_PR9.json with four sections:
#
#   hotpaths    the data-plane micro-benchmarks (arbiter pick, per-hop
#               forwarding, raw engine throughput) with -benchmem,
#               next to the checked-in PR4 baseline — the typed-event
#               engine's perf claim (0 allocs/op on the packet path)
#               stays reproducible with one command.
#   shardedCore events/sec of the sharded simulation core on a k=32
#               fat-tree at high load, -shards 4 vs the single-engine
#               baseline (ibsim -exp shardbench).  Every row carries
#               the per-window sync counters (barriers, ctrlTurns,
#               ctrlEvents) and the host "cpus" count, which bounds
#               the achievable speedup at min(shards, cpus): with
#               >= 4 CPUs the 4-shard row is expected at >= 2x the
#               single-engine events/sec; on fewer cores the same rows
#               measure the sync protocol's overhead instead (expected
#               within ~25% of the single-engine rate).
#   dragonfly   a multi-thousand-switch dragonfly (a=16, p=8, h=8:
#               2064 switches, 16512 hosts) under -shards 4 —
#               completion at scale is the acceptance signal.
#   scaleCheck  a k=16 fat-tree (320 switches, 1024 hosts) run under
#               -shards 4 — the historical scale row, kept comparable
#               across PRs.
#
# Usage: scripts/bench.sh [count]
#   count  micro-benchmark repetitions per name (default 3; the JSON
#          keeps the minimum ns/op, the least-noisy point estimate)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${1:-3}"
OUT="BENCH_PR9.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW" "$RAW".*' EXIT

echo "==> go test -bench (hot paths), count=$COUNT" >&2
go test -run '^$' \
    -bench '^(BenchmarkArbiterPick|BenchmarkArbiterPickInstrumented|BenchmarkArbiterPickFaultsDisabled|BenchmarkPerHopForwarding|BenchmarkEngine)$' \
    -benchmem -count="$COUNT" . | tee "$RAW" >&2

# Parse `BenchmarkName  N  ns/op  B/op  allocs/op` lines, keeping the
# minimum ns/op per benchmark (B/op and allocs/op are deterministic).
awk '
/^Benchmark/ {
    name = $1
    ns = $3; bytes = $5; allocs = $7
    if (!(name in best) || ns + 0 < best[name] + 0) {
        best[name] = ns; b[name] = bytes; a[name] = allocs
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
}
END {
    printf "["
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (i > 1) printf ","
        printf "\n      {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
            name, best[name], b[name], a[name]
    }
    printf "\n    ]"
}' "$RAW" > "$RAW.hotpaths"

echo "==> building ibsim" >&2
go build -o "$RAW.ibsim" ./cmd/ibsim

# The ibsim shardbench output is the human table, a blank line, then
# one JSON document; keep the JSON.
extract_json() { sed -n '/^{/,$p'; }

echo "==> sharded-core throughput, k=32 fat-tree (1280 switches), shards 1 vs 4" >&2
"$RAW.ibsim" -exp shardbench -bench-k 32 -bench-shards 1,4 -bench-horizon 100000 \
    | tee /dev/stderr | extract_json > "$RAW.shard32"

echo "==> dragonfly at scale (a=16 p=8 h=8: 2064 switches, 16512 hosts), shards 4" >&2
"$RAW.ibsim" -exp shardbench -bench-class dragonfly -bench-a 16 -bench-p 8 -bench-h 8 \
    -bench-shards 4 -bench-horizon 25000 \
    | tee /dev/stderr | extract_json > "$RAW.dragonfly"

echo "==> scale check, k=16 fat-tree (320 switches), shards 4" >&2
"$RAW.ibsim" -exp shardbench -bench-k 16 -bench-shards 4 -bench-horizon 250000 \
    | tee /dev/stderr | extract_json > "$RAW.shard16"

BASE="$(cat scripts/bench_baseline_pr4.json)"
{
    echo '{'
    echo '  "hotpaths": {'
    echo "    \"baseline\": $BASE,"
    echo "    \"current\": $(cat "$RAW.hotpaths")"
    echo '  },'
    echo "  \"shardedCore\": $(cat "$RAW.shard32"),"
    echo "  \"dragonfly\": $(cat "$RAW.dragonfly"),"
    echo "  \"scaleCheck\": $(cat "$RAW.shard16")"
    echo '}'
} > "$OUT"

echo "==> wrote $OUT" >&2
