#!/usr/bin/env bash
# bench.sh — hot-path benchmark harness.
#
# Runs the data-plane micro-benchmarks (arbiter pick, per-hop packet
# forwarding, raw engine throughput) with -benchmem and emits
# BENCH_PR4.json: the pre-refactor baseline (checked in at
# scripts/bench_baseline_pr4.json) next to the numbers just measured,
# so the typed-event engine's perf claim — 0 allocs/op on the packet
# path, >= 20% ns/op over the closure-based engine — is reproducible
# with one command.
#
# Usage: scripts/bench.sh [count]
#   count  benchmark repetitions per name (default 3; the JSON keeps
#          the minimum ns/op, the least-noisy point estimate)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${1:-3}"
OUT="BENCH_PR4.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "==> go test -bench (hot paths), count=$COUNT" >&2
go test -run '^$' \
    -bench '^(BenchmarkArbiterPick|BenchmarkArbiterPickInstrumented|BenchmarkArbiterPickFaultsDisabled|BenchmarkPerHopForwarding|BenchmarkEngine)$' \
    -benchmem -count="$COUNT" . | tee "$RAW" >&2

# Parse `BenchmarkName  N  ns/op  B/op  allocs/op` lines, keeping the
# minimum ns/op per benchmark (B/op and allocs/op are deterministic).
awk '
/^Benchmark/ {
    name = $1
    ns = $3; bytes = $5; allocs = $7
    if (!(name in best) || ns + 0 < best[name] + 0) {
        best[name] = ns; b[name] = bytes; a[name] = allocs
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
}
END {
    printf "["
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (i > 1) printf ","
        printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
            name, best[name], b[name], a[name]
    }
    printf "\n  ]"
}' "$RAW" > "$RAW.current"

BASE="$(cat scripts/bench_baseline_pr4.json)"
{
    echo '{'
    echo "  \"baseline\": $BASE,"
    echo "  \"current\": $(cat "$RAW.current")"
    echo '}'
} > "$OUT"
rm -f "$RAW.current"

echo "==> wrote $OUT" >&2
