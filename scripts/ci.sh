#!/usr/bin/env bash
# ci.sh — the repo's full verification gate.
#
#   fmt        gofmt -l must be empty (formatting is part of the gate)
#   vet        static checks
#   build      every package compiles
#   race tests the whole suite under the race detector with shuffled
#              test order (the parallel sweep runner makes this the
#              load-bearing pass; shuffling flushes out inter-test
#              state)
#   alloc gate the zero-alloc budgets of the data-plane hot paths,
#              run WITHOUT the race detector (race instrumentation
#              allocates, so the budgets only hold in a plain build)
#   fuzz smoke a short coverage-guided run of each fuzz target on top
#              of the checked-in seed corpus
#
# Usage: scripts/ci.sh [--no-fuzz]
#   FUZZTIME=30s scripts/ci.sh   # longer fuzz smoke
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"
RUN_FUZZ=1
if [[ "${1:-}" == "--no-fuzz" ]]; then
    RUN_FUZZ=0
fi

echo "==> gofmt -l"
UNFORMATTED="$(gofmt -l .)"
if [[ -n "$UNFORMATTED" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race -shuffle=on ./..."
# The experiments suite runs whole simulation sweeps; under the race
# detector on a small machine that legitimately exceeds go test's
# default 10m budget.
go test -race -shuffle=on -timeout=60m ./...

echo "==> go test -run Acyclic ./internal/routing/cdg (deadlock-freedom gate)"
# Every shipped routing engine must stay provably deadlock-free: the
# channel-dependency graphs of the irregular, fat-tree and dragonfly
# engines are re-verified acyclic across the seeded shape grid.
go test -run 'Acyclic' -count=1 ./internal/routing/cdg

echo "==> go test -race -run TestParallelShard ./internal/fabric (sharded-core race gate)"
# The conservative-lookahead window protocol is only correct if shards
# share nothing inside a window; the multi-shard smoke under the race
# detector is the proof obligation (-count=1 so it always re-runs).
go test -race -run 'TestParallelShard' -count=1 ./internal/fabric

echo "==> go test -race -run TestParallelControl ./internal/experiments (control-lane race gate)"
# Churn and faults run their control planes — mid-run table programs,
# retransmission, audits — as typed events serialized at window
# barriers; the multi-shard churn/faults smoke under the race detector
# proves the control lane never touches shard state inside a window.
go test -race -run 'TestParallelControl' -count=1 ./internal/experiments

echo "==> go test -run AllocBudget . (zero-alloc hot-path gate)"
# testing.AllocsPerRun budgets: 0 allocs/op on arbiter pick and on a
# full per-hop packet forwarding step with metrics disabled.  Must run
# without -race (the detector's instrumentation allocates).
go test -run 'AllocBudget' -count=1 .

if [[ "$RUN_FUZZ" -eq 1 ]]; then
    # -fuzz takes one target per invocation; -run='^$' skips the unit
    # tests already covered by the race pass.
    while read -r pkg target; do
        echo "==> fuzz smoke: $pkg $target ($FUZZTIME)"
        go test "$pkg" -run='^$' -fuzz="^${target}\$" -fuzztime="$FUZZTIME"
    done <<'EOF'
./internal/core FuzzAllocatorTrace
./internal/core FuzzShape
./internal/mad FuzzHighTableDecode
./internal/faults FuzzFaultSchedule
./internal/faults FuzzFailureSchedule
./internal/topology FuzzTopologyGenerate
./internal/fabric FuzzISLIPSchedule
./internal/plan FuzzPlanSpec
EOF
fi

echo "==> ibsim -exp faults -scale tiny (smoke)"
go run ./cmd/ibsim -exp faults -scale tiny >/dev/null

echo "==> ibsim -exp failover -scale tiny (live-failure recovery smoke, -race)"
# Failure recovery rewires routes, drains buffers and reprograms
# tables mid-run; the smoke runs it under the race detector so the
# engine-confined design stays honest.
go run -race ./cmd/ibsim -exp failover -scale tiny >/dev/null

echo "==> ibsim -exp scale -scale tiny (smoke)"
go run ./cmd/ibsim -exp scale -scale tiny >/dev/null

echo "==> ibsim -exp hol -scale tiny (smoke)"
go run ./cmd/ibsim -exp hol -scale tiny >/dev/null

echo "==> ibsim -exp plan -scale tiny (analytical capacity-plan smoke)"
go run ./cmd/ibsim -exp plan -scale tiny >/dev/null

echo "==> ibsim -shards 4 golden smoke (det mode must match -shards 1)"
# The deterministic shard mode pins every shard to one engine, so the
# scale goldens must be byte-identical at any shard count.
go run ./cmd/ibsim -exp scale -scale tiny -shards 1 -shard-det > /tmp/ci_shards1.out
go run ./cmd/ibsim -exp scale -scale tiny -shards 4 -shard-det > /tmp/ci_shards4.out
diff /tmp/ci_shards1.out /tmp/ci_shards4.out
rm -f /tmp/ci_shards1.out /tmp/ci_shards4.out

echo "==> ibsim churn/faults -shard-det sweep (det mode must match -shards 1)"
# Churn and faults no longer force the single-engine mode; under
# -shard-det their JSON must stay byte-identical at every shard count.
for exp in churn faults; do
    go run ./cmd/ibsim -exp "$exp" -scale tiny -shards 1 -shard-det > /tmp/ci_ctl_base.out
    for n in 2 4 8; do
        go run ./cmd/ibsim -exp "$exp" -scale tiny -shards "$n" -shard-det > /tmp/ci_ctl_n.out
        diff /tmp/ci_ctl_base.out /tmp/ci_ctl_n.out
    done
done
rm -f /tmp/ci_ctl_base.out /tmp/ci_ctl_n.out

echo "==> ibsim -exp shardbench (parallel core smoke)"
go run ./cmd/ibsim -exp shardbench -bench-shards 1,4 -bench-horizon 200000 >/dev/null

echo "==> ci.sh: all green"
