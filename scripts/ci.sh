#!/usr/bin/env bash
# ci.sh — the repo's full verification gate.
#
#   vet        static checks
#   build      every package compiles
#   race tests the whole suite under the race detector (the parallel
#              sweep runner makes this the load-bearing pass)
#   fuzz smoke a short coverage-guided run of each internal/core fuzz
#              target on top of the checked-in seed corpus
#
# Usage: scripts/ci.sh [--no-fuzz]
#   FUZZTIME=30s scripts/ci.sh   # longer fuzz smoke
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"
RUN_FUZZ=1
if [[ "${1:-}" == "--no-fuzz" ]]; then
    RUN_FUZZ=0
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
# The experiments suite runs whole simulation sweeps; under the race
# detector on a small machine that legitimately exceeds go test's
# default 10m budget.
go test -race -timeout=60m ./...

if [[ "$RUN_FUZZ" -eq 1 ]]; then
    # -fuzz takes one target per invocation; -run='^$' skips the unit
    # tests already covered by the race pass.
    for target in FuzzAllocatorTrace FuzzShape; do
        echo "==> fuzz smoke: $target ($FUZZTIME)"
        go test ./internal/core -run='^$' -fuzz="^${target}\$" -fuzztime="$FUZZTIME"
    done
fi

echo "==> ci.sh: all green"
