// Failover: surviving a link failure with QoS intact.
//
// InfiniBand's pitch in the paper's introduction is fault granularity:
// a disaggregated fabric survives component failures.  This example
// shows the whole control-plane loop around the paper's proposal:
//
//  1. a subnet manager discovers a 16-switch fabric and programs the
//     forwarding tables and QoS state (byte-exact management
//     datagrams, costs in MADs);
//  2. connection admission loads the fabric with guaranteed
//     connections;
//  3. every single inter-switch link is failed in turn; after each
//     failure the SM re-sweeps, reroutes, reprograms, and re-admits
//     the live connections over the surviving paths.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/internal/admission"
	"repro/internal/arbtable"
	"repro/internal/routing"
	"repro/internal/sl"
	"repro/internal/subnet"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	topo, err := topology.Generate(16, 2026)
	if err != nil {
		log.Fatal(err)
	}

	// Bring-up: discovery, forwarding tables, QoS state.
	sm := subnet.NewManager(topo)
	sweep, err := sm.Discover()
	if err != nil {
		log.Fatal(err)
	}
	fw, err := sm.ProgramForwarding()
	if err != nil {
		log.Fatal(err)
	}
	ports := admission.NewPorts(topo, arbtable.UnlimitedHigh)
	qos, err := sm.ProgramQoS(ports, sl.IdentityMapping())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bring-up: %d devices swept (%d MADs), forwarding %d MADs, QoS %d MADs\n",
		sweep.Devices, sweep.MADs, fw.MADs, qos.MADs)

	// Load the fabric.
	routes, err := routing.Compute(topo)
	if err != nil {
		log.Fatal(err)
	}
	ctrl := admission.NewController(topo, routes, sl.IdentityMapping(), ports)
	src := traffic.NewSource(sl.DefaultLevels, topo.NumHosts(), 5)
	var live []traffic.Request
	for attempts := 0; len(live) < 500 && attempts < 20000; attempts++ {
		req := src.Next()
		if _, err := ctrl.Admit(req); err == nil {
			live = append(live, req)
		}
	}
	fmt.Printf("loaded: %d guaranteed connections\n\n", len(live))

	// Fail every link in turn.
	fmt.Println("link failure        survival   reconfig MADs")
	worst := 1.0
	for _, l := range topo.Links() {
		rec, _, err := subnet.HandleLinkFailure(topo, l.A.Switch, l.A.Port, live, arbtable.UnlimitedHigh)
		if err != nil {
			fmt.Printf("sw%02d:p%d <-> sw%02d:p%d   PARTITION (cut edge)\n",
				l.A.Switch, l.A.Port, l.B.Switch, l.B.Port)
			continue
		}
		survival := float64(rec.Reestablished) / float64(len(live))
		if survival < worst {
			worst = survival
		}
		fmt.Printf("sw%02d:p%d <-> sw%02d:p%d   %6.1f%%    %d\n",
			l.A.Switch, l.A.Port, l.B.Switch, l.B.Port,
			100*survival, rec.Sweep.MADs+rec.Forwarding.MADs+rec.QoS.MADs)
	}
	fmt.Printf("\nworst-case survival across all single-link failures: %.1f%%\n", 100*worst)
}
