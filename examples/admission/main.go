// Admission churn: connections come and go, the tables defragment.
//
// This example exercises the dynamic side of the paper's proposal on a
// 16-switch network: thousands of connections are admitted and
// released in random order while the arbitration tables are
// defragmented on every release.  It reports the acceptance rate over
// time, proves the allocator invariants hold throughout, and contrasts
// the paper's bit-reversal fill-in with a naive first-fit filler on
// the same request stream (the naive one fragments and rejects
// requests that provably fit).
//
// Run with: go run ./examples/admission
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/admission"
	"repro/internal/arbtable"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sl"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	topo, err := topology.Generate(16, 99)
	if err != nil {
		log.Fatal(err)
	}
	routes, err := routing.Compute(topo)
	if err != nil {
		log.Fatal(err)
	}
	ctrl := admission.NewController(topo, routes, sl.IdentityMapping(),
		admission.NewPorts(topo, arbtable.UnlimitedHigh))

	rng := rand.New(rand.NewSource(7))
	src := traffic.NewSource(sl.DefaultLevels, topo.NumHosts(), 7)

	var live []*admission.Conn
	accepted, rejected := 0, 0
	fmt.Println("phase        live conns  accepted  rejected  mean host reservation (Mbps)")
	for step := 1; step <= 6000; step++ {
		if len(live) == 0 || rng.Intn(100) < 60 {
			conn, err := ctrl.Admit(src.Next())
			if err != nil {
				rejected++
			} else {
				accepted++
				live = append(live, conn)
			}
		} else {
			i := rng.Intn(len(live))
			if err := ctrl.Release(live[i]); err != nil {
				log.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%1000 == 0 {
			if err := ctrl.CheckInvariants(); err != nil {
				log.Fatalf("step %d: %v", step, err)
			}
			fmt.Printf("step %5d  %10d  %8d  %8d  %25.0f\n",
				step, len(live), accepted, rejected, ctrl.MeanHostReservation())
		}
	}
	fmt.Println("\nall allocator invariants held through 6000 admit/release steps")

	// Head-to-head on one port: how many random requests fit before
	// the first rejection under each fill-in policy?
	fmt.Println("\nfill-in policy comparison (requests placed before first reject):")
	sumBR, sumNat := 0, 0
	const trials = 200
	for seed := int64(0); seed < trials; seed++ {
		sumBR += baseline.FillUntilReject(seed, core.BitReversal)
		sumNat += baseline.FillUntilReject(seed, core.NaturalOrder)
	}
	fmt.Printf("  bit-reversal (paper): %.2f requests on average\n", float64(sumBR)/trials)
	fmt.Printf("  natural first fit:    %.2f requests on average\n", float64(sumNat)/trials)
}
