// Isolation: a misbehaving source only hurts its own virtual lane.
//
// Section 3.2 of the paper argues for classifying traffic into service
// levels by latency and giving each SL its own VL: "if some source
// sends more than it previously requested this will affect only the
// connections sharing the same VL, but the rest of the traffic in
// other VLs will achieve what they requested."
//
// This example reproduces that claim directly.  Three connections
// share a two-switch fabric:
//
//   - victim A (SL 3) — well behaved, its own virtual lane
//   - victim B (SL 5) — well behaved, SAME service level (and source
//     host, hence the same VL queues) as the rogue
//   - rogue    (SL 5) — reserved 20 Mbps, transmits 3000 Mbps
//     (more than the 2 Gbps link can even carry)
//
// Victim A, on its own VL, keeps 100 % of its deadline guarantee.
// Victim B shares the rogue's VL FIFO queues and suffers.
//
// Run with: go run ./examples/isolation
package main

import (
	"fmt"
	"log"

	"repro/internal/fabric"
	"repro/internal/sl"
	"repro/internal/traffic"
)

func main() {
	net, err := fabric.New(fabric.DefaultConfig(2, 512, 5))
	if err != nil {
		log.Fatal(err)
	}

	conn := func(src, dst, level int, mbps float64) *fabric.Flow {
		c, err := net.Adm.Admit(traffic.Request{
			Src: src, Dst: dst, Level: sl.DefaultLevels[level], Mbps: mbps,
		})
		if err != nil {
			log.Fatal(err)
		}
		return net.AddConnection(c)
	}

	victimA := conn(0, 7, 3, 3) // own VL (SL 3)
	victimB := conn(1, 6, 5, 20)
	// The rogue shares victim B's source host and service level: both
	// traverse the same VL 5 queues.  It reserves 20 Mbps but blasts
	// 3000 Mbps — beyond what the link can carry, so the shared VL
	// queue is permanently backlogged.
	rogueAdmitted, err := net.Adm.Admit(traffic.Request{
		Src: 1, Dst: 5, Level: sl.DefaultLevels[5], Mbps: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	rogue := net.AddMisbehavingConnection(rogueAdmitted, 3000)

	net.Start()
	warm := 4 * victimA.IAT
	net.Engine.Run(warm)
	net.StartMeasurement()
	net.Engine.Run(warm + 100*victimA.IAT)

	report := func(name string, f *fabric.Flow, window int64) {
		expected := float64(window) / float64(f.IAT)
		goodput := float64(f.Delivered.Packets) / expected
		fmt.Printf("%-22s VL%-2d  goodput %5.1f%%  deadline met %6.2f%%\n",
			name, f.VL, 100*goodput, f.Delay.PercentMeetingDeadline())
	}
	window := int64(100) * victimA.IAT
	fmt.Println("after a steady-state window with the rogue transmitting 150x its reservation:")
	report("victim A (own VL)", victimA, window)
	report("victim B (rogue's VL)", victimB, window)
	report("rogue", rogue, window)
	if victimA.Delay.PercentMeetingDeadline() < 100 {
		log.Fatal("victim A was disturbed; isolation property broken")
	}
	fmt.Println("\nvictim A is untouched; only the rogue's VL suffers — the paper's isolation property.")
}
