// RPC: message latency over QoS-reserved connections.
//
// Applications do not see packets — they see messages.  This example
// runs a request/response workload over the fabric's transport layer
// (segmentation and reassembly, as IBA reliable connections provide)
// and shows how the per-packet arbitration guarantees compose into
// message-level latency:
//
//   - small RPCs on a strict service level (SL 2) keep tight, stable
//     latency even while
//   - bulk transfers (SL 9) and a saturating best-effort background
//     hammer the same links.
//
// Run with: go run ./examples/rpc
package main

import (
	"fmt"
	"log"

	"repro/internal/fabric"
	"repro/internal/sl"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/transport"
)

func main() {
	net, err := fabric.New(fabric.DefaultConfig(4, 256, 77))
	if err != nil {
		log.Fatal(err)
	}
	messenger := transport.NewMessenger(net)

	connect := func(src, dst, level int, mbps float64) *fabric.Flow {
		conn, err := net.Adm.Admit(traffic.Request{
			Src: src, Dst: dst, Level: sl.DefaultLevels[level], Mbps: mbps,
		})
		if err != nil {
			log.Fatal(err)
		}
		f := net.AddConnection(conn)
		f.IAT = 1 << 40 // transport drives the traffic, not the CBR generator
		return f
	}

	// Four RPC clients (1 KB requests on SL 2) and two bulk movers
	// (64 KB transfers on SL 9).
	var rpcFlows, bulkFlows []*fabric.Flow
	for i := 0; i < 4; i++ {
		rpcFlows = append(rpcFlows, connect(i, 8+i, 2, 4))
	}
	for i := 0; i < 2; i++ {
		bulkFlows = append(bulkFlows, connect(4+i, 12+i, 9, 64))
	}
	// Best-effort background noise from every host.
	for _, be := range traffic.BestEffortBackground(net.Topo.NumHosts(), 400, 3) {
		net.AddBestEffort(be)
	}

	const (
		rpcSize      = 1024
		rpcInterval  = 600_000 // byte times between requests
		bulkSize     = 64 * 1024
		bulkInterval = 2_300_000
	)
	for _, f := range rpcFlows {
		messenger.Stream(f, rpcSize, rpcInterval)
	}
	for _, f := range bulkFlows {
		messenger.Stream(f, bulkSize, bulkInterval)
	}

	net.Start()
	net.Engine.Run(30_000_000) // 120 ms of fabric time
	net.StopGeneration()
	net.Engine.Run(net.Engine.Now() + 5_000_000)

	var rpcLat, bulkLat stats.Accum
	for _, m := range messenger.Completed() {
		us := float64(m.Latency()) * sl.ByteTimeNs / 1000
		if m.Size == rpcSize {
			rpcLat.Add(us)
		} else {
			bulkLat.Add(us)
		}
	}
	fmt.Printf("RPC  (1 KB, SL2):  %4d messages, latency µs: %s\n", rpcLat.N, rpcLat.String())
	fmt.Printf("bulk (64 KB, SL9): %4d messages, latency µs: %s\n", bulkLat.N, bulkLat.String())
	if messenger.OutOfOrder != 0 {
		log.Fatalf("%d segments arrived out of order", messenger.OutOfOrder)
	}
	if messenger.Inflight() != 0 {
		log.Fatalf("%d messages stuck in flight", messenger.Inflight())
	}
	fmt.Println("\nall messages reassembled in order; RPC latency stays microsecond-stable under bulk + best-effort load")
}
