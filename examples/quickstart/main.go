// Quickstart: fill an InfiniBand arbitration table with the paper's
// algorithm.
//
// It reserves three connections with different latency (distance) and
// bandwidth requirements on one output port, shows where the
// bit-reversal fill-in places them, releases one, and demonstrates
// that defragmentation keeps the table able to accept the most
// restrictive request.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/arbtable"
	"repro/internal/core"
	"repro/internal/sl"
)

func main() {
	// One output port's VLArbitrationTable, managed by the paper's
	// allocator.
	table := arbtable.New(arbtable.UnlimitedHigh)
	port := core.NewPortTable(table)

	// A connection asks for a maximum latency and a mean bandwidth.
	// The latency turns into a maximum distance between consecutive
	// table entries, the bandwidth into a weight.
	reserve := func(name string, vl uint8, hopDeadlineUs float64, mbps float64) core.Reservation {
		wire := 2048 + sl.HeaderBytes
		deadlineBT := int64(hopDeadlineUs * 1000 / sl.ByteTimeNs)
		distance, err := sl.DistanceForHopDeadline(deadlineBT, wire)
		if err != nil {
			log.Fatal(err)
		}
		weight := sl.WeightForBandwidth(mbps)
		r, err := port.Reserve(vl, distance, weight)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s VL%d  deadline/hop %6.0f us -> distance %2d, %g Mbps -> weight %d\n",
			name, vl, hopDeadlineUs, distance, mbps, weight)
		return r
	}

	fmt.Println("Reserving three connections:")
	voice := reserve("voice", 0, 160, 1)             // strict latency, low bandwidth
	video := reserve("video", 1, 600, 16)            // moderate latency
	backup := reserve("storage backup", 2, 5000, 64) // bandwidth only

	fmt.Println("\nHigh-priority table (slot: VL*weight):")
	fmt.Println(table)

	for vl := uint8(0); vl <= 2; vl++ {
		fmt.Printf("VL%d max distance between entries: %d slots\n", vl, table.MaxGap(vl))
	}

	// A second voice call shares the existing VL0 sequence: no new
	// slots are consumed, only weight.
	free := port.Allocator().FreeSlots()
	voice2, err := port.Reserve(0, 2, sl.WeightForBandwidth(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond voice call shares sequence %d (free slots still %d)\n",
		voice2.Seq, port.Allocator().FreeSlots())
	if free != port.Allocator().FreeSlots() {
		log.Fatal("sharing should not consume slots")
	}

	// Tear down and show the allocation theorem at work: after
	// releases (and automatic defragmentation) a maximally strict
	// request fits exactly when enough slots are free.
	for _, r := range []core.Reservation{voice, voice2, video, backup} {
		if err := port.Release(r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nafter releases: %d free slots, table empty: %v\n",
		port.Allocator().FreeSlots(), table.HighWeight() == 0)

	if err := port.Allocator().CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("allocator invariants hold")
}
