// Videowall: a mixed multimedia / storage data center fabric — the
// workload the paper's introduction motivates.
//
// An 8-switch irregular network carries three traffic classes at once:
//
//   - voice calls        (SL 0, distance 2: the strictest deadlines)
//   - video streams      (SL 5, distance 32: bandwidth-hungry, time sensitive)
//   - storage replication (SL 8, distance 64: bandwidth only)
//   - best-effort web/mail background on the low-priority table
//
// The example admits every stream through connection admission
// control, simulates the loaded fabric, and prints per-class deadline
// and jitter results — every guaranteed packet must arrive in time
// even though best-effort traffic is flooding the same links.
//
// Run with: go run ./examples/videowall
package main

import (
	"fmt"
	"log"

	"repro/internal/fabric"
	"repro/internal/sl"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	net, err := fabric.New(fabric.DefaultConfig(8, 1024, 2026))
	if err != nil {
		log.Fatal(err)
	}
	hosts := net.Topo.NumHosts()

	admit := func(src, dst int, level sl.Level, mbps float64) *fabric.Flow {
		conn, err := net.Adm.Admit(traffic.Request{Src: src, Dst: dst, Level: level, Mbps: mbps})
		if err != nil {
			log.Fatalf("admitting %g Mbps on SL %d: %v", mbps, level.SL, err)
		}
		return net.AddConnection(conn)
	}

	classes := map[string][]*fabric.Flow{}

	// 16 voice calls between random-ish host pairs.
	for i := 0; i < 16; i++ {
		f := admit(i%hosts, (i+7)%hosts, sl.DefaultLevels[0], 0.8)
		classes["voice"] = append(classes["voice"], f)
	}
	// 8 video streams at 24 Mbps.
	for i := 0; i < 8; i++ {
		f := admit((3*i)%hosts, (3*i+11)%hosts, sl.DefaultLevels[5], 24)
		classes["video"] = append(classes["video"], f)
	}
	// 6 storage replication flows at 14 Mbps.
	for i := 0; i < 6; i++ {
		f := admit((5*i)%hosts, (5*i+13)%hosts, sl.DefaultLevels[8], 14)
		classes["storage"] = append(classes["storage"], f)
	}
	// Best-effort background from every host.
	for _, be := range traffic.BestEffortBackground(hosts, 400, 9) {
		net.AddBestEffort(be)
	}

	// Simulate: short warm-up, then a measured steady-state window.
	slowest := classes["voice"][0].IAT
	net.Start()
	net.Engine.Run(2 * slowest)
	net.StartMeasurement()
	net.Engine.Run(2*slowest + 60*slowest)

	fmt.Println("class      flows  packets  deadline met  worst delay/D  jitter in ±IAT/8")
	for _, name := range []string{"voice", "video", "storage"} {
		flows := classes[name]
		delay := stats.NewDelayCDF()
		jitter := &stats.JitterHist{}
		for _, f := range flows {
			delay.Merge(f.Delay)
			jitter.Merge(f.Jitter)
		}
		fmt.Printf("%-10s %5d  %7d  %11.2f%%  %13.3f  %15.1f%%\n",
			name, len(flows), delay.Total(), delay.PercentMeetingDeadline(),
			delay.MaxRatio(), jitter.CentralPercent())
	}

	util := net.MeanHostUtilization()
	// Stop the sources and drain the fabric, then verify conservation:
	// every injected packet was delivered.
	net.StopGeneration()
	net.Engine.Run(net.Engine.Now() + 10*slowest)
	if err := net.CheckConservation(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfabric: %.1f%% mean host-link utilization; conservation verified after drain\n", util)
}
