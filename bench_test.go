// Package repro's top-level benchmarks regenerate every table and
// figure of the paper (at the Tiny scale so `go test -bench .` stays
// fast; run `ibsim -scale full` for paper-scale numbers) and measure
// the hot paths of the core library.  EXPERIMENTS.md records the
// paper-vs-measured comparison produced by these harnesses.
package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/arbtable"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/sl"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// --- Experiment benchmarks: one per table/figure (DESIGN.md T1-A3) ---

// BenchmarkTable1SLConfig regenerates Table 1 (service levels).
func BenchmarkTable1SLConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) != 10 {
			b.Fatal("bad Table 1")
		}
	}
}

// evaluate runs the paired small/large simulation once per iteration.
func evaluate(b *testing.B) *experiments.Evaluation {
	b.Helper()
	ev, err := experiments.Evaluate(experiments.Tiny())
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// BenchmarkTable2Throughput regenerates Table 2 (traffic, utilization
// and reservation for both packet sizes).
func BenchmarkTable2Throughput(b *testing.B) {
	var last [2]experiments.Table2Row
	for i := 0; i < b.N; i++ {
		last = evaluate(b).Table2()
	}
	b.ReportMetric(last[0].HostUtilization, "%util-small")
	b.ReportMetric(last[1].HostUtilization, "%util-large")
	b.ReportMetric(last[0].DeadlineMetPercent, "%deadline-small")
	b.ReportMetric(last[1].DeadlineMetPercent, "%deadline-large")
}

// BenchmarkFigure4DelayDistribution regenerates Figure 4 (packet delay
// distribution per SL, both packet sizes).
func BenchmarkFigure4DelayDistribution(b *testing.B) {
	var f4 experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		f4 = evaluate(b).Figure4()
	}
	// The paper's claim: every SL delivers all packets by the deadline.
	worst := 100.0
	for _, s := range append(f4.Small, f4.Large...) {
		if p := s.Percent[len(s.Percent)-1]; p < worst {
			worst = p
		}
	}
	b.ReportMetric(worst, "%worst-SL-deadline")
}

// BenchmarkFigure5Jitter regenerates Figure 5 (jitter per SL).
func BenchmarkFigure5Jitter(b *testing.B) {
	var series []experiments.JitterSeries
	for i := 0; i < b.N; i++ {
		series = evaluate(b).Figure5()
	}
	central := 100.0
	for _, s := range series {
		if s.Samples > 10 && s.Percent[5] < central {
			central = s.Percent[5]
		}
	}
	b.ReportMetric(central, "%worst-central-jitter")
}

// BenchmarkFigure6BestWorst regenerates Figure 6 (best vs worst
// connection of the strictest SLs).
func BenchmarkFigure6BestWorst(b *testing.B) {
	var series []experiments.BestWorstSeries
	for i := 0; i < b.N; i++ {
		series = evaluate(b).Figure6()
	}
	spread := 0.0
	for _, s := range series {
		for i := range s.Best {
			if d := s.Best[i] - s.Worst[i]; d > spread {
				spread = d
			}
		}
	}
	b.ReportMetric(spread, "max-best-worst-spread-pp")
}

// BenchmarkAblationPrioritySplit regenerates the priority-split
// ablation (DB victim goodput, new vs old scheme).
func BenchmarkAblationPrioritySplit(b *testing.B) {
	var res experiments.PrioritySplitResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationPrioritySplit(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.NewSchemeGoodput, "goodput-new")
	b.ReportMetric(res.OldSchemeGoodput, "goodput-old")
}

// BenchmarkAblationFillStrategies regenerates the fill-policy ablation
// (bit-reversal vs natural first fit).
func BenchmarkAblationFillStrategies(b *testing.B) {
	var rows [2]experiments.FillPolicyResult
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationFillPolicies(20, 3)
	}
	b.ReportMetric(rows[0].MeanFillUntilReject, "fills-bitrev")
	b.ReportMetric(rows[1].MeanFillUntilReject, "fills-natural")
	b.ReportMetric(rows[1].Serviceability, "serviceability-natural")
}

// BenchmarkScalingNetworkSize regenerates the network-size sweep (the
// paper evaluates 8-64 switches and reports similar results).
func BenchmarkScalingNetworkSize(b *testing.B) {
	var rows []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Scaling(experiments.Tiny(), []int{2, 4})
	}
	worst := 100.0
	for _, r := range rows {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		if r.DeadlineMetPercent < worst {
			worst = r.DeadlineMetPercent
		}
	}
	b.ReportMetric(worst, "%worst-deadline")
}

// --- Micro-benchmarks on the hot paths ---

// BenchmarkAllocate measures the fill-in algorithm: a burst of mixed
// allocations filling the table, then a reset.
func BenchmarkAllocate(b *testing.B) {
	distances := []int{64, 32, 16, 8}
	table := arbtable.New(arbtable.UnlimitedHigh)
	alloc := core.NewAllocator(table)
	var live []core.SeqID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := alloc.Allocate(uint8(i%14), distances[i%len(distances)], 1+i%500)
		if err != nil {
			// Table full: release everything and continue.
			b.StopTimer()
			for _, id := range live {
				seq := alloc.Lookup(id)
				if seq != nil {
					alloc.RemoveWeight(id, seq.Weight)
				}
			}
			live = live[:0]
			b.StartTimer()
			continue
		}
		live = append(live, s.ID)
	}
}

// BenchmarkReserveRelease measures the sharing layer under churn,
// including defragmentation on release.
func BenchmarkReserveRelease(b *testing.B) {
	port := core.NewPortTable(arbtable.New(arbtable.UnlimitedHigh))
	for i := 0; i < b.N; i++ {
		r1, err := port.Reserve(uint8(i%10), 8, 40)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := port.Reserve(uint8(i%10), 32, 300)
		if err != nil {
			b.Fatal(err)
		}
		port.Release(r1)
		port.Release(r2)
	}
}

// BenchmarkDefragment measures a worst-ish-case defragmentation pass:
// a fragmented table with sequences of every size.
func BenchmarkDefragment(b *testing.B) {
	build := func() *core.Allocator {
		a := core.NewAllocator(arbtable.New(arbtable.UnlimitedHigh))
		ids := make([]core.SeqID, 0, 16)
		for i := 0; i < 16; i++ {
			s, err := a.Allocate(uint8(i%14), 16, 200)
			if err != nil {
				break
			}
			ids = append(ids, s.ID)
		}
		// Free every other sequence without letting the release-side
		// defragmentation tidy up, by using the naive policy? No —
		// release defragments; measure the pass on the live layout.
		for i := 0; i < len(ids); i += 2 {
			if s := a.Lookup(ids[i]); s != nil {
				a.RemoveWeight(ids[i], s.Weight)
			}
		}
		return a
	}
	a := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Defragment()
	}
}

// benchArbiter builds the loaded arbiter shared by the Pick benchmarks
// and the alloc-budget gates.
func benchArbiter(tb testing.TB) (*arbtable.Arbiter, *arbtable.Ready) {
	tb.Helper()
	table := arbtable.New(2)
	alloc := core.NewAllocator(table)
	for i := 0; i < 8; i++ {
		if _, err := alloc.Allocate(uint8(i), 8, 100+i); err != nil {
			tb.Fatal(err)
		}
	}
	table.Low = []arbtable.Entry{{VL: 10, Weight: 8}, {VL: 11, Weight: 4}}
	arb := arbtable.NewArbiter(table)
	var ready arbtable.Ready
	for vl := 0; vl < 8; vl++ {
		ready[vl] = 282
	}
	ready[10], ready[11] = 282, 282
	return arb, &ready
}

// BenchmarkArbiterPick measures the output-port scheduler under a
// loaded table, with observability disabled (the default).  The 0
// allocs/op report is the zero-overhead contract.
func BenchmarkArbiterPick(b *testing.B) {
	arb, ready := benchArbiter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := arb.Pick(ready); !ok {
			b.Fatal("nothing picked")
		}
	}
}

// BenchmarkArbiterPickInstrumented is the same hot path with metrics
// counters attached and every pick recorded into the trace ring —
// still 0 allocs/op; the observability layer adds arithmetic, not
// allocation.
func BenchmarkArbiterPickInstrumented(b *testing.B) {
	arb, ready := benchArbiter(b)
	var c metrics.ArbCounters
	arb.SetMetrics(&c)
	trace := metrics.NewTraceBuffer(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vl, _, ok := arb.Pick(ready)
		if !ok {
			b.Fatal("nothing picked")
		}
		lp := arb.Last()
		trace.Record(metrics.TraceEvent{
			Time: int64(i), Port: 0, VL: uint8(vl), High: lp.High,
			Entry: int16(lp.Entry), WeightLeft: int32(lp.Residual),
		})
	}
	if c.Picks == 0 {
		b.Fatal("counters not attached")
	}
}

// BenchmarkArbiterPickFaultsDisabled is the scheduling pass as the
// fabric runs it with fault injection disabled: the nil-injector
// availability query (the one extra branch the faults layer costs)
// followed by the pick.  Still 0 allocs/op — the acceptance bar for
// the fault-injection subsystem's disabled state.
func BenchmarkArbiterPickFaultsDisabled(b *testing.B) {
	arb, ready := benchArbiter(b)
	var inj *faults.Injector // nil: faults disabled
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if until := inj.BlockedUntil(faults.HostKey(0), int64(i)); until > int64(i) {
			b.Fatal("nil injector blocked the port")
		}
		if _, _, ok := arb.Pick(ready); !ok {
			b.Fatal("nothing picked")
		}
	}
}

// BenchmarkPerHopForwarding measures the full data-plane packet path
// in steady state: one op is one packet generated at a host, arbitrated
// onto the wire, forwarded through the switch crossbar and delivered at
// its destination — every event the fabric schedules per packet,
// including the engine's heap work.  Metrics are disabled (the
// default), so the 0 allocs/op report is the zero-garbage contract of
// the typed-event hot path.
func BenchmarkPerHopForwarding(b *testing.B) {
	net, err := fabric.New(fabric.DefaultConfig(2, 256, 41))
	if err != nil {
		b.Fatal(err)
	}
	conn, err := net.Adm.Admit(traffic.Request{Src: 0, Dst: 7, Level: sl.DefaultLevels[9], Mbps: 64})
	if err != nil {
		b.Fatal(err)
	}
	net.AddConnection(conn)
	net.Start()
	// Warm-up: let queues, pools and the event heap reach their
	// steady-state capacity.
	net.Engine.Run(1 << 22)
	_, delivered, _ := net.Totals()
	var target int64
	cond := func() bool {
		_, d, _ := net.Totals()
		return d < target
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target = delivered + int64(i) + 1
		net.Engine.RunWhile(cond)
	}
}

// BenchmarkVOQForward measures the same full packet path through the
// input-queued switch models: VOQ enqueue, crossbar scheduling pass
// (iSLIP or the exact MWM oracle), arbitration-table lane pick, and
// delivery.  The 0 allocs/op report is the VOQ half of the zero-
// garbage contract ci.sh gates.
func BenchmarkVOQForward(b *testing.B) {
	for _, model := range []fabric.SwitchModel{fabric.ModelVOQISLIP, fabric.ModelVOQMWM} {
		model := model
		b.Run(model.String(), func(b *testing.B) {
			cfg := fabric.DefaultConfig(2, 256, 41)
			cfg.SwitchModel = model
			net, err := fabric.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			conn, err := net.Adm.Admit(traffic.Request{Src: 0, Dst: 7, Level: sl.DefaultLevels[9], Mbps: 64})
			if err != nil {
				b.Fatal(err)
			}
			net.AddConnection(conn)
			net.Start()
			net.Engine.Run(1 << 22)
			_, delivered, _ := net.Totals()
			var target int64
			cond := func() bool {
				_, d, _ := net.Totals()
				return d < target
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				target = delivered + int64(i) + 1
				net.Engine.RunWhile(cond)
			}
		})
	}
}

// BenchmarkRouting measures up*/down* route computation for the
// paper's 16-switch network.
func BenchmarkRouting(b *testing.B) {
	topo, err := topology.Generate(16, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.Compute(topo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine measures raw event throughput of the simulation
// core.
func BenchmarkEngine(b *testing.B) {
	var e sim.Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.After(1, tick)
		}
	}
	b.ResetTimer()
	e.At(0, tick)
	e.Run(int64(b.N) + 10)
}

// BenchmarkFillUntilReject measures the acceptance trial used by the
// fill-policy ablation.
func BenchmarkFillUntilReject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		baseline.FillUntilReject(int64(i), core.BitReversal)
	}
}

// BenchmarkDelayCDF measures the statistics hot path (one Add per
// delivered packet in the simulator).
func BenchmarkDelayCDF(b *testing.B) {
	d := stats.NewDelayCDF()
	for i := 0; i < b.N; i++ {
		d.Add(float64(i%100) / 100)
	}
}

// BenchmarkAblationVLCollapse regenerates the VL-collapse ablation.
func BenchmarkAblationVLCollapse(b *testing.B) {
	var rows []experiments.VLCollapseRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationVLCollapse(experiments.Tiny(), []int{15, 4})
	}
	for _, r := range rows {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportMetric(float64(rows[0].Connections), "conns-15vl")
	b.ReportMetric(float64(rows[1].Connections), "conns-4vl")
}

// BenchmarkAblationSwitchModels regenerates the switch-model ablation.
func BenchmarkAblationSwitchModels(b *testing.B) {
	var rows []experiments.SwitchModelRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationSwitchModels(experiments.Tiny(), []int{1, 2})
	}
	for _, r := range rows {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportMetric(rows[0].WorstDelayRatio, "worst-delay-speedup1")
	b.ReportMetric(rows[1].WorstDelayRatio, "worst-delay-speedup2")
}

// BenchmarkExtensionVBR regenerates the VBR reservation experiment.
func BenchmarkExtensionVBR(b *testing.B) {
	var res experiments.VBRResult
	for i := 0; i < b.N; i++ {
		res = experiments.AblationVBR(11, 4, 8, 2, 10)
	}
	if res.MeanReserved.Err != nil || res.PeakReserved.Err != nil {
		b.Fatal(res.MeanReserved.Err, res.PeakReserved.Err)
	}
	b.ReportMetric(res.MeanReserved.WorstDelayRatio, "worst-mean-reserved")
	b.ReportMetric(res.PeakReserved.WorstDelayRatio, "worst-peak-reserved")
}

// BenchmarkTransportMessages measures message segmentation,
// transmission and reassembly throughput end to end.
func BenchmarkTransportMessages(b *testing.B) {
	net, err := fabric.New(fabric.DefaultConfig(2, 256, 41))
	if err != nil {
		b.Fatal(err)
	}
	conn, err := net.Adm.Admit(traffic.Request{Src: 0, Dst: 7, Level: sl.DefaultLevels[9], Mbps: 64})
	if err != nil {
		b.Fatal(err)
	}
	f := net.AddConnection(conn)
	f.IAT = 1 << 40
	m := transport.NewMessenger(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Send(f, 4096); err != nil {
			b.Fatal(err)
		}
		net.Engine.Run(net.Engine.Now() + 1<<19)
		if m.Inflight() != 0 {
			b.Fatal("message stuck")
		}
	}
}

// BenchmarkReconfiguration regenerates the control-plane study:
// subnet-manager bring-up plus recovery from every single-link
// failure.
func BenchmarkReconfiguration(b *testing.B) {
	var res experiments.ReconfigResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Reconfiguration(8, 7, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.MeanSurvival, "%mean-survival")
	b.ReportMetric(res.MeanReconfMADs, "reconf-MADs")
}

// sweepBenchJobs builds the 16-config sweep (two fabric sizes, eight
// seeds each) used by BenchmarkSweepWorkers.  Each job is a full
// independent simulation: build the network, admit connections, run
// warm-up plus measurement, and return the delivered-byte total as a
// cheap cross-worker checksum.
func sweepBenchJobs() []runner.Job[int64] {
	var jobs []runner.Job[int64]
	for _, sw := range []int{2, 3} {
		for seed := int64(42); seed < 50; seed++ {
			sw, seed := sw, seed
			jobs = append(jobs, runner.Job[int64]{
				Name: fmt.Sprintf("bench-%dsw-seed%d", sw, seed),
				Seed: seed,
				Run: func(context.Context, int64) (int64, error) {
					p := experiments.Tiny()
					p.Switches = sw
					p.Seed = seed
					run, err := experiments.SetupWith(p, experiments.SmallPayload, nil)
					if err != nil {
						return 0, err
					}
					run.Execute()
					_, delivered, _ := run.Net.Totals()
					return delivered, nil
				},
			})
		}
	}
	return jobs
}

// BenchmarkSweepWorkers measures wall-clock time of the same
// 16-config sweep at several worker counts.  On a multi-core host the
// 4- and 8-worker variants should show the near-linear speedup the
// parallel runner exists for (compare ns/op across sub-benchmarks;
// per-config results are bit-identical regardless of worker count —
// TestParallelRunnerDeterminism is the correctness gate).  On a
// single-core host all variants collapse to sequential speed.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var checksum int64
			for i := 0; i < b.N; i++ {
				results := runner.Sweep(context.Background(), sweepBenchJobs(),
					runner.Options{Workers: workers})
				if err := runner.FirstError(results); err != nil {
					b.Fatal(err)
				}
				sum := int64(0)
				for _, r := range results {
					sum += r.Value
				}
				if checksum == 0 {
					checksum = sum
				} else if sum != checksum {
					b.Fatalf("sweep checksum changed between iterations: %d then %d", checksum, sum)
				}
			}
			b.ReportMetric(float64(len(sweepBenchJobs())), "configs")
		})
	}
}
